// Potential function tests (Sections 3–4): the C_p update rules of §4.2,
// Property 8 / Lemma 19 at every node of real runs, Corollary 10, and
// Lemma 12, for algorithms in the paper's class.
#include <gtest/gtest.h>

#include "core/potential.hpp"
#include "core/surface.hpp"
#include "routing/restricted_priority.hpp"
#include "test_support.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

using test::make_problem;
using test::xy;

core::PotentialTracker::Config config_2d(const net::Mesh& mesh) {
  core::PotentialTracker::Config config;
  config.c_init = 2 * mesh.side();
  config.d = mesh.dim();
  return config;
}

TEST(Potential, InitialPhiIsDistancePlusCInit) {
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(3, 4))},   // dist 7
       {mesh.node_at(xy(5, 5)), mesh.node_at(xy(5, 6))}}); // dist 1
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::PotentialTracker tracker(mesh, engine, config_2d(mesh));
  EXPECT_EQ(tracker.phi(), (7 + 16) + (1 + 16));
}

TEST(Potential, DeliveredAtInjectionContributesZero) {
  net::Mesh mesh(2, 8);
  auto problem = make_problem({{9, 9}});
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::PotentialTracker tracker(mesh, engine, config_2d(mesh));
  EXPECT_EQ(tracker.phi(), 0);
}

TEST(Potential, LonePacketLosesAtLeastOnePerStep) {
  // A single packet always advances: distance −1 per step; its C drops by
  // 2 once it becomes a Type A restricted packet, so per-step loss ≥ 1.
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(4, 2))}});
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::PotentialTracker tracker(mesh, engine, config_2d(mesh));
  engine.add_observer(&tracker);
  const auto result = engine.run();
  ASSERT_TRUE(result.completed);
  const auto& phi = tracker.phi_series();
  for (std::size_t t = 0; t + 1 < phi.size(); ++t) {
    EXPECT_LE(phi[t + 1], phi[t] - 1);
  }
  EXPECT_EQ(phi.back(), 0);
  EXPECT_TRUE(tracker.property8_violations().empty());
  EXPECT_TRUE(tracker.structure_violations().empty());
}

TEST(Potential, TypeARuleDropsTwoPerAdvancingStep) {
  // A packet aligned with its destination is restricted from injection;
  // after its first advancing step it is Type A and then drops 2 per step.
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 3)), mesh.node_at(xy(5, 3))}});
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::PotentialTracker tracker(mesh, engine, config_2d(mesh));
  engine.add_observer(&tracker);
  engine.step();
  EXPECT_EQ(tracker.c_of(0), 2 * 8 - 2);  // first Type A step
  engine.step();
  EXPECT_EQ(tracker.c_of(0), 2 * 8 - 4);
  engine.step();
  EXPECT_EQ(tracker.c_of(0), 2 * 8 - 6);
}

TEST(Potential, ArrivalZerosPotential) {
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(2, 2)), mesh.node_at(xy(2, 3))}});
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::PotentialTracker tracker(mesh, engine, config_2d(mesh));
  engine.add_observer(&tracker);
  engine.run();
  EXPECT_EQ(tracker.phi(), 0);
  EXPECT_EQ(tracker.c_of(0), 0);
}

TEST(Potential, NonRestrictedPacketKeepsCInit) {
  // A packet with two good directions (unaligned) resets to c_init every
  // step while it stays unrestricted.
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(4, 4))}});
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::PotentialTracker tracker(mesh, engine, config_2d(mesh));
  engine.add_observer(&tracker);
  engine.step();
  // Still diagonal to its destination: unrestricted, C = 2n.
  EXPECT_EQ(tracker.c_of(0), 16);
}

TEST(Potential, SwitchRuleOnTypeADeflection) {
  // Constructs the §4.2 rule 3(b) situation exactly.
  //
  //   p (id 0): (2,4)→(5,3). At t=1 it shares (2,4) with r, whose single
  //             good arc is east; r wins east, p advances south into (2,3)
  //             — so at t=2 p is a Type B restricted-east packet.
  //   r (id 1): (2,4)→(7,4), restricted east, keeps p off the east arc.
  //   q (id 2): (1,3)→(7,3), restricted east; advances into (2,3) at t=1,
  //             so at t=2 it is Type A with C_q = 2n − 2 = 14.
  //
  // At t=2 node (2,3) holds p (Type B) and q (Type A), both needing east.
  // Arrival-order tie-break advances p, deflecting q: rule 3(b) gives
  // C_p = C_q − 2 = 12 and q resets to 2n = 16.
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(2, 4)), mesh.node_at(xy(5, 3))},    // p
       {mesh.node_at(xy(2, 4)), mesh.node_at(xy(7, 4))},    // r
       {mesh.node_at(xy(1, 3)), mesh.node_at(xy(7, 3))}});  // q
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::PotentialTracker tracker(mesh, engine, config_2d(mesh));
  engine.add_observer(&tracker);

  engine.step();  // t: 0 → 1
  EXPECT_EQ(tracker.c_of(0), 16);  // p advanced while unrestricted
  EXPECT_EQ(tracker.c_of(2), 14);  // q advanced while restricted: Type A

  engine.step();  // t: 1 → 2 — the switch happens at node (2,3)
  EXPECT_EQ(tracker.c_of(0), 12);  // p took q's load minus 2
  EXPECT_EQ(tracker.c_of(2), 16);  // deflected q reset (Type B next step)

  const auto result = engine.run();
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(tracker.property8_violations().empty());
  EXPECT_TRUE(tracker.structure_violations().empty());
}

class PotentialSweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, int>> {};

TEST_P(PotentialSweep, Property8HoldsOnRandomRuns) {
  const auto [n, k, seed] = GetParam();
  net::Mesh mesh(2, n);
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  auto problem = workload::random_many_to_many(mesh, k, rng);
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::PotentialTracker tracker(mesh, engine, config_2d(mesh));
  core::SurfaceTracker surface(mesh);
  engine.add_observer(&tracker);
  engine.add_observer(&surface);
  const auto result = engine.run();
  ASSERT_TRUE(result.completed) << "routing did not terminate";

  EXPECT_TRUE(tracker.property8_violations().empty())
      << tracker.property8_violations().size() << " Property 8 violations";
  EXPECT_TRUE(tracker.structure_violations().empty())
      << (tracker.structure_violations().empty()
              ? ""
              : tracker.structure_violations().front());
  EXPECT_GE(tracker.min_slack(), 0);
  // The 2-D analysis implies C_p ≥ 2 while a packet is in flight.
  EXPECT_GE(tracker.min_c(), 2);
  EXPECT_GT(tracker.min_phi(), 0);
  EXPECT_LE(tracker.max_phi(), 4 * n);

  // Corollary 10 and Lemma 12 on the same run.
  EXPECT_TRUE(
      core::check_corollary10(tracker.phi_series(), surface.g_series())
          .empty());
  EXPECT_TRUE(
      core::check_lemma12(tracker.phi_series(), surface.f_series()).empty());
  EXPECT_EQ(tracker.phi(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    RandomRuns, PotentialSweep,
    ::testing::Combine(::testing::Values(4, 6, 8, 12),
                       ::testing::Values(std::size_t{4}, std::size_t{16},
                                         std::size_t{48}),
                       ::testing::Values(1, 2, 3)));

class PotentialTieBreakSweep
    : public ::testing::TestWithParam<
          routing::RestrictedPriorityPolicy::TieBreak> {};

TEST_P(PotentialTieBreakSweep, AllTieBreaksStayInTheClass) {
  // Theorem 20 covers the whole class: every tie-break variant must pass
  // the Property 8 audit.
  net::Mesh mesh(2, 8);
  Rng rng(4242);
  auto problem = workload::random_many_to_many(mesh, 64, rng);
  routing::RestrictedPriorityPolicy::Params params;
  params.tie_break = GetParam();
  routing::RestrictedPriorityPolicy policy(params);
  sim::Engine engine(mesh, problem, policy);
  core::PotentialTracker tracker(mesh, engine, config_2d(mesh));
  engine.add_observer(&tracker);
  ASSERT_TRUE(engine.run().completed);
  EXPECT_TRUE(tracker.property8_violations().empty());
  EXPECT_TRUE(tracker.structure_violations().empty());
}

INSTANTIATE_TEST_SUITE_P(
    TieBreaks, PotentialTieBreakSweep,
    ::testing::Values(
        routing::RestrictedPriorityPolicy::TieBreak::kArrivalOrder,
        routing::RestrictedPriorityPolicy::TieBreak::kRandom,
        routing::RestrictedPriorityPolicy::TieBreak::kTypeAFirst,
        routing::RestrictedPriorityPolicy::TieBreak::kTypeBFirst));

TEST(Lemma12Check, FlagsViolations) {
  // Synthetic series: Φ = 10, 9, 9, 9 with F(0) = 3 ⇒ Φ(2) > Φ(0) − 3.
  std::vector<std::int64_t> phi{10, 9, 9, 9};
  std::vector<std::int64_t> f{3, 0};
  const auto bad = core::check_lemma12(phi, f);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], 0u);
}

TEST(Corollary10Check, FlagsViolations) {
  std::vector<std::int64_t> phi{10, 9};
  std::vector<std::int64_t> g{2};
  const auto bad = core::check_corollary10(phi, g);
  ASSERT_EQ(bad.size(), 1u);
}

}  // namespace
}  // namespace hp
