// Stats layer tests: per-step recording, latency summaries and the
// distance-bucketed profile used by the §1 motivation experiments.
#include <gtest/gtest.h>

#include <sstream>

#include "routing/restricted_priority.hpp"
#include "stats/recorder.hpp"
#include "test_support.hpp"
#include "workload/generators.hpp"

namespace hp::stats {
namespace {

using test::make_problem;
using test::xy;

TEST(RunRecorder, OneRowPerStep) {
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(3, 0))}});
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  RunRecorder recorder;
  engine.add_observer(&recorder);
  const auto result = engine.run();
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(recorder.rows().size(), 3u);
  EXPECT_EQ(recorder.rows()[0].in_flight, 1);
  EXPECT_EQ(recorder.rows()[0].advanced, 1);
  EXPECT_EQ(recorder.rows()[0].deflected, 0);
  EXPECT_EQ(recorder.rows()[0].total_distance, 3);
  EXPECT_EQ(recorder.rows()[2].arrived, 1);
  EXPECT_EQ(recorder.rows()[2].total_distance, 1);
}

TEST(RunRecorder, CsvHasHeaderAndAllRows) {
  net::Mesh mesh(2, 6);
  Rng rng(3);
  auto problem = workload::random_many_to_many(mesh, 20, rng);
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  RunRecorder recorder;
  engine.add_observer(&recorder);
  engine.run();
  std::ostringstream out;
  recorder.write_csv(out);
  const std::string csv = out.str();
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), recorder.rows().size() + 1);
  EXPECT_EQ(csv.substr(0, 4), "step");
}

TEST(LatencySummary, CountsAndStretch) {
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(4, 0))},
       {mesh.node_at(xy(0, 1)), mesh.node_at(xy(0, 1))}});  // trivial
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  const auto result = engine.run();
  const auto summary = summarize_latency(result);
  EXPECT_EQ(summary.delivered, 2u);
  // Lone packet: latency = distance ⇒ stretch exactly 1; trivial packet
  // contributes stretch 0 (latency 0 over max(1, 0)).
  EXPECT_DOUBLE_EQ(summary.stretch.max(), 1.0);
  EXPECT_DOUBLE_EQ(summary.latency.max(), 4.0);
  EXPECT_DOUBLE_EQ(summary.deflections.max(), 0.0);
}

TEST(DistanceProfile, BucketsByInitialDistance) {
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(2, 0))},    // dist 2
       {mesh.node_at(xy(0, 1)), mesh.node_at(xy(5, 1))},    // dist 5
       {mesh.node_at(xy(1, 2)), mesh.node_at(xy(3, 2))}});  // dist 2
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  const auto result = engine.run();
  const auto profile = profile_by_distance(result);
  ASSERT_GE(profile.by_distance.size(), 6u);
  EXPECT_EQ(profile.by_distance[2].count(), 2u);
  EXPECT_EQ(profile.by_distance[5].count(), 1u);
  EXPECT_DOUBLE_EQ(profile.by_distance[2].mean(), 2.0);
  EXPECT_DOUBLE_EQ(profile.by_distance[5].mean(), 5.0);
}

TEST(DistanceProfile, SkipsUndelivered) {
  sim::RunResult result;
  sim::Packet p;
  p.initial_distance = 3;  // never arrived
  result.packets.push_back(p);
  const auto profile = profile_by_distance(result);
  for (const auto& stat : profile.by_distance) {
    EXPECT_EQ(stat.count(), 0u);
  }
}

}  // namespace
}  // namespace hp::stats
