// Store-and-forward dimension-order baseline tests.
#include <gtest/gtest.h>

#include "routing/store_forward.hpp"
#include "test_support.hpp"
#include "workload/generators.hpp"

namespace hp::routing {
namespace {

using test::make_problem;
using test::xy;

TEST(StoreForward, SinglePacketTakesShortestPath) {
  net::Mesh mesh(2, 8);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(5, 3))}});
  const auto result = run_store_forward(mesh, problem);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.steps, 8u);
  EXPECT_EQ(result.arrival[0], 8u);
  EXPECT_EQ(result.initial_distance[0], 8);
}

TEST(StoreForward, PreRoutedPacketCostsZero) {
  net::Mesh mesh(2, 4);
  auto problem = make_problem({{7, 7}});
  const auto result = run_store_forward(mesh, problem);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.steps, 0u);
}

TEST(StoreForward, ContendedLinkSerializes) {
  // Two packets from the same node along the same first link: the second
  // waits one step in the queue (buffering, unlike hot-potato).
  net::Mesh mesh(2, 8);
  const auto src = mesh.node_at(xy(0, 0));
  auto problem = make_problem(
      {{src, mesh.node_at(xy(3, 0))}, {src, mesh.node_at(xy(4, 0))}});
  const auto result = run_store_forward(mesh, problem);
  ASSERT_TRUE(result.completed);
  // First leaves at step 1 and arrives at 3; second starts 1 behind.
  EXPECT_EQ(result.arrival[0], 3u);
  EXPECT_EQ(result.arrival[1], 5u);
  EXPECT_GE(result.max_queue, 2u);
}

TEST(StoreForward, RoutesXBeforeY) {
  // A packet to (2,2) must arrive via the north arc of (2,2) after
  // correcting x first — indirectly observable: with a blocker occupying
  // the x-line the packet queues rather than adapting. Here we just check
  // completion and latency equals distance for a lone packet (no
  // adaptivity means no detours ever).
  net::Mesh mesh(2, 6);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 4)), mesh.node_at(xy(2, 2))}});
  const auto result = run_store_forward(mesh, problem);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.steps, 4u);
}

TEST(StoreForward, PermutationCompletes) {
  net::Mesh mesh(2, 8);
  Rng rng(21);
  auto problem = workload::random_permutation(mesh, rng);
  const auto result = run_store_forward(mesh, problem);
  ASSERT_TRUE(result.completed);
  EXPECT_GE(result.steps, static_cast<std::uint64_t>(
                              1));  // sanity: nonzero work happened
}

TEST(StoreForward, LatencyNeverBelowDistance) {
  net::Mesh mesh(2, 8);
  Rng rng(22);
  auto problem = workload::random_many_to_many(mesh, 120, rng);
  const auto result = run_store_forward(mesh, problem);
  ASSERT_TRUE(result.completed);
  for (std::size_t i = 0; i < problem.size(); ++i) {
    EXPECT_GE(result.arrival[i],
              static_cast<std::uint64_t>(result.initial_distance[i]));
  }
}

TEST(StoreForward, MaxStepsCapReported) {
  net::Mesh mesh(2, 8);
  Rng rng(23);
  auto problem = workload::random_many_to_many(mesh, 60, rng);
  const auto result = run_store_forward(mesh, problem, /*max_steps=*/2);
  EXPECT_FALSE(result.completed);
}

TEST(StoreForward, HotspotQueuesGrow) {
  // Many packets to one destination: dimension-order queues pile up at
  // the target's in-links — the cost of buffered routing the paper's
  // optical-network motivation wants to avoid.
  net::Mesh mesh(2, 8);
  Rng rng(24);
  auto problem = workload::single_target(mesh, 80, mesh.node_at(xy(4, 4)),
                                         rng);
  const auto result = run_store_forward(mesh, problem);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.max_queue, 4u);
}

}  // namespace
}  // namespace hp::routing
