// Surface-arc machinery tests (Definitions 9 & 11, Figures 3 & 4, Lemma 14).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/surface.hpp"
#include "routing/restricted_priority.hpp"
#include "test_support.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

using test::xy;

std::vector<int> empty_occupancy(const net::Mesh& mesh) {
  return std::vector<int>(mesh.num_nodes(), 0);
}

TEST(Surface, NoBadNodesNoSurface) {
  net::Mesh mesh(2, 6);
  auto occ = empty_occupancy(mesh);
  occ[0] = 2;   // ≤ d = 2: good
  occ[10] = 1;
  const auto snap = core::analyze_congestion(mesh, occ);
  EXPECT_EQ(snap.packets_in_bad, 0);
  EXPECT_EQ(snap.packets_in_good, 3);
  EXPECT_EQ(snap.bad_nodes, 0);
  EXPECT_EQ(snap.surface_arcs, 0);
}

TEST(Surface, SingleInteriorBadNodeHasAllSurfaceArcs) {
  // One isolated bad node: every one of its 2d arcs is a surface arc
  // (all 2-neighbors are good).
  net::Mesh mesh(2, 8);
  auto occ = empty_occupancy(mesh);
  occ[static_cast<std::size_t>(mesh.node_at(xy(4, 4)))] = 3;
  const auto snap = core::analyze_congestion(mesh, occ);
  EXPECT_EQ(snap.packets_in_bad, 3);
  EXPECT_EQ(snap.bad_nodes, 1);
  EXPECT_EQ(snap.surface_arcs, 4);
}

TEST(Surface, CornerBadNodeCountsOffMeshArcs) {
  // Definition 11: arcs that lead "out of the mesh" count as surface arcs,
  // as do directions whose 2-neighbor does not exist.
  net::Mesh mesh(2, 8);
  auto occ = empty_occupancy(mesh);
  occ[static_cast<std::size_t>(mesh.node_at(xy(0, 0)))] = 3;
  const auto snap = core::analyze_congestion(mesh, occ);
  // 2 missing arcs (west, south) + 2 existing arcs whose 2-neighbors are
  // good ⇒ 4 surface arcs.
  EXPECT_EQ(snap.surface_arcs, 4);
}

TEST(Surface, AdjacentBadNodesStillFullSurface) {
  // Two bad nodes that are direct neighbors are in different parity
  // classes, so neither shields the other: each contributes 2d faces.
  net::Mesh mesh(2, 8);
  auto occ = empty_occupancy(mesh);
  occ[static_cast<std::size_t>(mesh.node_at(xy(4, 4)))] = 3;
  occ[static_cast<std::size_t>(mesh.node_at(xy(5, 4)))] = 3;
  const auto snap = core::analyze_congestion(mesh, occ);
  EXPECT_EQ(snap.surface_arcs, 8);
}

TEST(Surface, TwoNeighborBadNodesShieldEachOther) {
  // Bad nodes at 2-neighbor positions (same parity class) share a "face":
  // the arc from each toward the other is NOT a surface arc.
  net::Mesh mesh(2, 8);
  auto occ = empty_occupancy(mesh);
  occ[static_cast<std::size_t>(mesh.node_at(xy(4, 4)))] = 3;
  occ[static_cast<std::size_t>(mesh.node_at(xy(6, 4)))] = 3;
  const auto snap = core::analyze_congestion(mesh, occ);
  EXPECT_EQ(snap.surface_arcs, 6);  // 8 arcs minus the two facing ones
}

TEST(Surface, BadBlockScalesLikePerimeter) {
  // A solid square of bad nodes in ONE parity class of side s has
  // volume s² and exactly 4s... faces per class geometry: the class is an
  // (n/2)×(n/2) mesh, a solid s×s square there has perimeter 4s.
  net::Mesh mesh(2, 16);
  auto occ = empty_occupancy(mesh);
  const int s = 3;
  for (int i = 0; i < s; ++i) {
    for (int j = 0; j < s; ++j) {
      occ[static_cast<std::size_t>(mesh.node_at(xy(4 + 2 * i, 4 + 2 * j)))] = 4;
    }
  }
  const auto snap = core::analyze_congestion(mesh, occ);
  EXPECT_EQ(snap.bad_nodes, s * s);
  EXPECT_EQ(snap.surface_arcs, 4 * s);
  // Lemma 14: F ≥ (2d)^{1/d} B^{(d−1)/d} with B = 4s².
  EXPECT_GE(static_cast<double>(snap.surface_arcs),
            core::lemma14_bound(2, static_cast<double>(snap.packets_in_bad)));
}

TEST(Surface, Lemma14BoundValues) {
  // d = 2: (2·2)^{1/2}·B^{1/2} = 2√B.
  EXPECT_DOUBLE_EQ(core::lemma14_bound(2, 16.0), 8.0);
  EXPECT_DOUBLE_EQ(core::lemma14_bound(2, 0.0), 0.0);
  // d = 3: 6^{1/3}·B^{2/3}.
  EXPECT_NEAR(core::lemma14_bound(3, 8.0), std::cbrt(6.0) * 4.0, 1e-12);
}

TEST(Surface, ThreeDBadNodeFullSurface) {
  net::Mesh mesh(3, 8);
  auto occ = std::vector<int>(mesh.num_nodes(), 0);
  net::Coord c;
  c.push_back(4);
  c.push_back(4);
  c.push_back(4);
  occ[static_cast<std::size_t>(mesh.node_at(c))] = 4;  // > d = 3: bad
  const auto snap = core::analyze_congestion(mesh, occ);
  EXPECT_EQ(snap.surface_arcs, 6);
  EXPECT_EQ(snap.packets_in_bad, 4);
}

TEST(SurfaceTracker, RecordsSeriesAndChecksLemma14) {
  net::Mesh mesh(2, 8);
  Rng rng(77);
  auto problem = workload::random_many_to_many(mesh, 100, rng);
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::SurfaceTracker tracker(mesh);
  engine.add_observer(&tracker);
  const auto result = engine.run();
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(tracker.b_series().size(), result.steps_executed);
  EXPECT_TRUE(tracker.lemma14_violations().empty());
  // B + G = packets in flight at each step (nonincreasing over time).
  for (std::size_t t = 0; t + 1 < tracker.b_series().size(); ++t) {
    EXPECT_GE(tracker.b_series()[t] + tracker.g_series()[t],
              tracker.b_series()[t + 1] + tracker.g_series()[t + 1]);
  }
  if (tracker.min_lemma14_ratio() !=
      std::numeric_limits<double>::infinity()) {
    EXPECT_GE(tracker.min_lemma14_ratio(), 1.0);
  }
}

TEST(SurfaceTracker, Lemma14HoldsOnThreeDimensionalRuns) {
  net::Mesh mesh(3, 4);
  Rng rng(78);
  auto problem = workload::saturated_random(mesh, 6, rng);
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, problem, policy);
  core::SurfaceTracker tracker(mesh);
  engine.add_observer(&tracker);
  const auto result = engine.run();
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(tracker.lemma14_violations().empty());
  // This load guarantees bad nodes exist at t = 0 (some node holds > 3).
  EXPECT_GT(tracker.b_series()[0], 0);
}

TEST(SurfaceTracker, RefusesTorus) {
  net::Mesh torus(2, 8, /*wrap=*/true);
  EXPECT_THROW(core::SurfaceTracker{torus}, CheckError);
}

}  // namespace
}  // namespace hp
