// Shared helpers for the hotpotato test suite.
#pragma once

#include <memory>
#include <vector>

#include "core/checkers.hpp"
#include "routing/restricted_priority.hpp"
#include "sim/engine.hpp"
#include "topology/mesh.hpp"
#include "workload/workload.hpp"

namespace hp::test {

inline net::Coord xy(int x, int y) {
  net::Coord c;
  c.push_back(x);
  c.push_back(y);
  return c;
}

inline workload::Problem make_problem(
    std::vector<workload::PacketSpec> specs) {
  workload::Problem p;
  p.name = "test";
  p.packets = std::move(specs);
  return p;
}

/// A deliberately simple baseline policy for engine-mechanics tests: each
/// packet takes its first good arc if free, else the first free arc.
/// (Equivalent to sequential greedy in arrival order.)
class FirstGoodPolicy : public sim::RoutingPolicy {
 public:
  std::string name() const override { return "first-good"; }
  bool deterministic() const override { return true; }

  void route(const sim::NodeContext& ctx,
             std::span<const sim::PacketView> packets,
             std::span<net::Dir> out) override {
    std::uint32_t used = 0;
    for (std::size_t i = 0; i < packets.size(); ++i) {
      out[i] = net::kInvalidDir;
      for (net::Dir g : packets[i].good) {
        if (((used >> g) & 1u) == 0) {
          out[i] = g;
          used |= std::uint32_t{1} << g;
          break;
        }
      }
    }
    for (std::size_t i = 0; i < packets.size(); ++i) {
      if (out[i] != net::kInvalidDir) continue;
      for (net::Dir d : ctx.avail_dirs) {
        if (((used >> d) & 1u) == 0) {
          out[i] = d;
          used |= std::uint32_t{1} << d;
          break;
        }
      }
    }
  }
};

/// Runs `problem` on `net` under `policy` with the Definition 6 checker
/// attached; returns the result after asserting the greedy property held.
struct CheckedRun {
  sim::RunResult result;
  std::vector<std::string> greedy_violations;
  std::vector<std::string> preference_violations;
};

inline CheckedRun run_checked(const net::Network& network,
                              const workload::Problem& problem,
                              sim::RoutingPolicy& policy,
                              sim::EngineConfig config = {}) {
  sim::Engine engine(network, problem, policy, config);
  core::GreedyChecker greedy;
  core::RestrictedPreferenceChecker preference;
  engine.add_observer(&greedy);
  engine.add_observer(&preference);
  CheckedRun out;
  out.result = engine.run();
  out.greedy_violations = greedy.violations();
  out.preference_violations = preference.violations();
  return out;
}

}  // namespace hp::test
