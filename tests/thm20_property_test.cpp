// Property suite for Theorem 20: across meshes, loads, seeds and every
// tie-break variant in the class, measured routing time never exceeds
// 8√2 · n · √k, and the runs satisfy the full set of paper invariants.
#include <gtest/gtest.h>

#include <memory>

#include "core/bounds.hpp"
#include "core/checkers.hpp"
#include "core/potential.hpp"
#include "routing/restricted_priority.hpp"
#include "test_support.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

struct Case {
  int n;
  std::size_t k;
  std::uint64_t seed;
  routing::RestrictedPriorityPolicy::TieBreak tie_break;
  routing::DeflectRule deflect;
};

class Thm20Sweep : public ::testing::TestWithParam<Case> {};

TEST_P(Thm20Sweep, BoundHolds) {
  const Case c = GetParam();
  net::Mesh mesh(2, c.n);
  Rng rng(c.seed);
  auto problem = workload::random_many_to_many(mesh, c.k, rng);

  routing::RestrictedPriorityPolicy::Params params;
  params.tie_break = c.tie_break;
  params.deflect = c.deflect;
  routing::RestrictedPriorityPolicy policy(params);

  sim::EngineConfig config;
  config.seed = c.seed + 1;
  sim::Engine engine(mesh, problem, policy, config);
  core::PotentialTracker::Config potential_config;
  potential_config.c_init = 2 * c.n;
  potential_config.d = 2;
  core::PotentialTracker potential(mesh, engine, potential_config);
  core::RestrictedPreferenceChecker preference;
  engine.add_observer(&potential);
  engine.add_observer(&preference);

  const auto result = engine.run();
  ASSERT_TRUE(result.completed);
  EXPECT_LE(static_cast<double>(result.steps),
            core::thm20_bound(c.n, static_cast<double>(c.k)));
  EXPECT_TRUE(preference.violations().empty());
  EXPECT_TRUE(potential.property8_violations().empty());
  EXPECT_TRUE(potential.structure_violations().empty());
  // Theorem 17's premise: Φ(0) ≤ k·M with M = 4n.
  EXPECT_LE(static_cast<double>(potential.phi_series().front()),
            core::phi0_upper(static_cast<double>(c.k), 4.0 * c.n));
}

std::vector<Case> make_cases() {
  using TieBreak = routing::RestrictedPriorityPolicy::TieBreak;
  std::vector<Case> cases;
  const TieBreak ties[] = {TieBreak::kArrivalOrder, TieBreak::kRandom,
                           TieBreak::kTypeAFirst, TieBreak::kTypeBFirst};
  const routing::DeflectRule rules[] = {routing::DeflectRule::kFirstFree,
                                        routing::DeflectRule::kRandom,
                                        routing::DeflectRule::kStraight};
  std::uint64_t seed = 1;
  for (int n : {4, 8, 12}) {
    for (std::size_t k :
         {std::size_t{2}, static_cast<std::size_t>(n),
          static_cast<std::size_t>(n) * n / 2,
          static_cast<std::size_t>(n) * n}) {
      for (const auto tie : ties) {
        for (const auto rule : rules) {
          cases.push_back(Case{n, k, seed++, tie, rule});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Thm20Sweep, ::testing::ValuesIn(make_cases()),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      const Case& c = param_info.param;
      return "n" + std::to_string(c.n) + "_k" + std::to_string(c.k) + "_tie" +
             std::to_string(static_cast<int>(c.tie_break)) + "_defl" +
             std::to_string(static_cast<int>(c.deflect));
    });

TEST(Thm20, AdversarialWorkloadsStayUnderBound) {
  net::Mesh mesh(2, 8);
  Rng rng(5150);
  const std::vector<workload::Problem> adversarial = {
      workload::transpose(mesh), workload::bit_reversal(mesh),
      workload::inversion(mesh), workload::corner_to_corner(mesh, rng),
      workload::hotspot(mesh, 100, 1, rng)};
  for (const auto& problem : adversarial) {
    routing::RestrictedPriorityPolicy policy;
    sim::Engine engine(mesh, problem, policy);
    const auto result = engine.run();
    ASSERT_TRUE(result.completed) << problem.name;
    EXPECT_LE(static_cast<double>(result.steps),
              core::thm20_bound(8, static_cast<double>(problem.size())))
        << problem.name;
  }
}

TEST(Thm20, MeasuredTimeGrowsSublinearlyInK) {
  // The bound is Θ(√k) for fixed n; the measured curve should grow far
  // more slowly than linearly in k (this is the "superb performance in
  // simulations" the paper reports). We check a weak, robust form:
  // doubling k from n²/4 to n²/2 must not triple the routing time.
  net::Mesh mesh(2, 16);
  Rng rng(246);
  auto p1 = workload::random_many_to_many(mesh, 64, rng);
  auto p2 = workload::random_many_to_many(mesh, 128, rng);
  routing::RestrictedPriorityPolicy policy1, policy2;
  sim::Engine e1(mesh, p1, policy1), e2(mesh, p2, policy2);
  const auto r1 = e1.run(), r2 = e2.run();
  ASSERT_TRUE(r1.completed && r2.completed);
  EXPECT_LT(static_cast<double>(r2.steps),
            3.0 * static_cast<double>(r1.steps) + 30.0);
}

}  // namespace
}  // namespace hp
