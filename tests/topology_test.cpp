// Topology tests: the d-dimensional mesh of Definition 1, directions
// (Definition 3, Figure 1), the 2-neighbor relation and its equivalence
// classes (Definition 4, Figure 2), torus wrap, and the hypercube.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace hp::net {
namespace {

Coord xy(int x, int y) {
  Coord c;
  c.push_back(x);
  c.push_back(y);
  return c;
}

TEST(Mesh, NodeCountAndDiameter) {
  Mesh m2(2, 5);
  EXPECT_EQ(m2.num_nodes(), 25u);
  EXPECT_EQ(m2.diameter(), 8);
  Mesh m3(3, 4);
  EXPECT_EQ(m3.num_nodes(), 64u);
  EXPECT_EQ(m3.diameter(), 9);
}

TEST(Mesh, CoordRoundTrip) {
  Mesh m(3, 5);
  for (NodeId v = 0; v < static_cast<NodeId>(m.num_nodes()); ++v) {
    EXPECT_EQ(m.node_at(m.coords(v)), v);
  }
}

TEST(Mesh, DirectionLabels) {
  // Definition 3: label 2a is "+" on axis a, 2a+1 is "−".
  EXPECT_EQ(Mesh::axis_of(0), 0);
  EXPECT_EQ(Mesh::sign_of(0), +1);
  EXPECT_EQ(Mesh::axis_of(1), 0);
  EXPECT_EQ(Mesh::sign_of(1), -1);
  EXPECT_EQ(Mesh::axis_of(4), 2);
  EXPECT_EQ(Mesh::dir_of(2, -1), 5);
  EXPECT_EQ(Mesh::dir_of(0, +1), 0);
}

TEST(Mesh, NeighborsFollowDirections) {
  Mesh m(2, 4);
  const NodeId v = m.node_at(xy(1, 2));
  EXPECT_EQ(m.neighbor(v, Mesh::dir_of(0, +1)), m.node_at(xy(2, 2)));
  EXPECT_EQ(m.neighbor(v, Mesh::dir_of(0, -1)), m.node_at(xy(0, 2)));
  EXPECT_EQ(m.neighbor(v, Mesh::dir_of(1, +1)), m.node_at(xy(1, 3)));
  EXPECT_EQ(m.neighbor(v, Mesh::dir_of(1, -1)), m.node_at(xy(1, 1)));
}

TEST(Mesh, EdgesHaveNoOutsideArcs) {
  Mesh m(2, 4);
  const NodeId corner = m.node_at(xy(0, 0));
  EXPECT_EQ(m.neighbor(corner, Mesh::dir_of(0, -1)), kInvalidNode);
  EXPECT_EQ(m.neighbor(corner, Mesh::dir_of(1, -1)), kInvalidNode);
  EXPECT_NE(m.neighbor(corner, Mesh::dir_of(0, +1)), kInvalidNode);
  EXPECT_EQ(m.degree(corner), 2);
  EXPECT_EQ(m.degree(m.node_at(xy(1, 0))), 3);
  EXPECT_EQ(m.degree(m.node_at(xy(1, 1))), 4);
}

TEST(Mesh, ReverseDirReturns) {
  Mesh m(3, 4);
  for (NodeId v = 0; v < static_cast<NodeId>(m.num_nodes()); ++v) {
    for (Dir d = 0; d < m.num_dirs(); ++d) {
      const NodeId nb = m.neighbor(v, d);
      if (nb == kInvalidNode) continue;
      EXPECT_EQ(m.neighbor(nb, m.reverse_dir(d)), v);
    }
  }
}

TEST(Mesh, DistanceIsL1) {
  Mesh m(2, 8);
  EXPECT_EQ(m.distance(m.node_at(xy(0, 0)), m.node_at(xy(7, 7))), 14);
  EXPECT_EQ(m.distance(m.node_at(xy(3, 5)), m.node_at(xy(3, 5))), 0);
  EXPECT_EQ(m.distance(m.node_at(xy(2, 1)), m.node_at(xy(5, 0))), 4);
}

TEST(Mesh, DistanceMatchesBfsOnSmallMesh) {
  // Property check: the closed-form L1 distance equals graph distance.
  Mesh m(2, 4);
  for (NodeId s = 0; s < static_cast<NodeId>(m.num_nodes()); ++s) {
    std::vector<int> dist(m.num_nodes(), -1);
    std::vector<NodeId> frontier{s};
    dist[static_cast<std::size_t>(s)] = 0;
    while (!frontier.empty()) {
      std::vector<NodeId> next;
      for (NodeId v : frontier) {
        for (Dir d = 0; d < m.num_dirs(); ++d) {
          const NodeId nb = m.neighbor(v, d);
          if (nb != kInvalidNode && dist[static_cast<std::size_t>(nb)] < 0) {
            dist[static_cast<std::size_t>(nb)] =
                dist[static_cast<std::size_t>(v)] + 1;
            next.push_back(nb);
          }
        }
      }
      frontier = std::move(next);
    }
    for (NodeId t = 0; t < static_cast<NodeId>(m.num_nodes()); ++t) {
      EXPECT_EQ(m.distance(s, t), dist[static_cast<std::size_t>(t)]);
    }
  }
}

TEST(Mesh, GoodDirsMatchDefinition5) {
  Mesh m(5, 9);
  // The paper's example (1-based coords ⟨1,3,2,6,1⟩ → ⟨4,3,8,2,1⟩; ours are
  // 0-based): good directions are "+" on axis 0, "+" on axis 2, "−" on
  // axis 3.
  Coord at;
  for (int x : {0, 2, 1, 5, 0}) at.push_back(x);
  Coord to;
  for (int x : {3, 2, 7, 1, 0}) to.push_back(x);
  const DirList good = m.good_dirs(m.node_at(at), m.node_at(to));
  std::set<Dir> expect{Mesh::dir_of(0, +1), Mesh::dir_of(2, +1),
                       Mesh::dir_of(3, -1)};
  // Axis 1 differs too in our version of the example? No: 2 → 2 aligned;
  // axis 4 aligned. Exactly three good directions.
  std::set<Dir> got(good.begin(), good.end());
  EXPECT_EQ(got, expect);
  EXPECT_EQ(m.num_good_dirs(m.node_at(at), m.node_at(to)), 3);
}

TEST(Mesh, GoodDirsEmptyOnlyAtDestination) {
  Mesh m(2, 5);
  for (NodeId v = 0; v < static_cast<NodeId>(m.num_nodes()); ++v) {
    for (NodeId t = 0; t < static_cast<NodeId>(m.num_nodes()); ++t) {
      const auto good = m.good_dirs(v, t);
      EXPECT_EQ(good.empty(), v == t);
      for (Dir g : good) {
        EXPECT_TRUE(m.is_good_dir(v, t, g));
        EXPECT_EQ(m.distance(m.neighbor(v, g), t), m.distance(v, t) - 1);
      }
    }
  }
}

TEST(Mesh, TwoNeighborMatchesDefinition4) {
  Mesh m(2, 5);
  // ⟨1,2⟩ is a 2-neighbor of ⟨3,2⟩ in direction "−" on axis 0; ⟨2,3⟩ is
  // not a 2-neighbor of ⟨3,2⟩ (paper's example, 1-based; ours 0-based:
  // (0,1) vs (2,1), and (1,2) not 2-neighbor).
  EXPECT_EQ(m.two_neighbor(m.node_at(xy(2, 1)), Mesh::dir_of(0, -1)),
            m.node_at(xy(0, 1)));
  // No direction reaches (1,2) from (2,1) with two same-direction arcs.
  for (Dir d = 0; d < m.num_dirs(); ++d) {
    EXPECT_NE(m.two_neighbor(m.node_at(xy(2, 1)), d), m.node_at(xy(1, 2)));
  }
}

TEST(Mesh, TwoNeighborOffMeshIsInvalid) {
  Mesh m(2, 4);
  EXPECT_EQ(m.two_neighbor(m.node_at(xy(1, 0)), Mesh::dir_of(0, -1)),
            kInvalidNode);
  EXPECT_EQ(m.two_neighbor(m.node_at(xy(0, 0)), Mesh::dir_of(1, -1)),
            kInvalidNode);
  EXPECT_EQ(m.two_neighbor(m.node_at(xy(0, 0)), Mesh::dir_of(0, +1)),
            m.node_at(xy(2, 0)));
}

TEST(Mesh, ParityClassesPartitionIntoTwoPowD) {
  // The transitive closure of the 2-neighbor relation has 2^d classes,
  // each isomorphic to an (n/2)^d mesh (for even n).
  for (int d : {1, 2, 3}) {
    Mesh m(d, 4);
    std::map<int, int> class_sizes;
    for (NodeId v = 0; v < static_cast<NodeId>(m.num_nodes()); ++v) {
      ++class_sizes[m.parity_class(v)];
    }
    EXPECT_EQ(class_sizes.size(), static_cast<std::size_t>(1 << d));
    for (const auto& [cls, size] : class_sizes) {
      EXPECT_EQ(size, static_cast<int>(m.num_nodes()) / (1 << d));
    }
  }
}

TEST(Mesh, TwoNeighborsShareParityClass) {
  Mesh m(2, 6);
  for (NodeId v = 0; v < static_cast<NodeId>(m.num_nodes()); ++v) {
    for (Dir d = 0; d < m.num_dirs(); ++d) {
      const NodeId nn = m.two_neighbor(v, d);
      if (nn == kInvalidNode) continue;
      EXPECT_EQ(m.parity_class(v), m.parity_class(nn));
    }
  }
}

// The closed-form good_dirs/num_good_dirs/is_good_dir overrides must agree
// with the definition — direction content AND order — since the routing
// engine's behaviour (and the determinism golden corpus) depends on both.
void expect_goodness_matches_probe(const Network& net, std::uint64_t seed) {
  Rng rng(seed);
  const auto n = static_cast<NodeId>(net.num_nodes());
  for (int trial = 0; trial < 500; ++trial) {
    const auto at = static_cast<NodeId>(rng.uniform(net.num_nodes()));
    const auto dst = static_cast<NodeId>(rng.uniform(net.num_nodes()));
    DirList probe;
    const int here = net.distance(at, dst);
    for (Dir d = 0; d < net.num_dirs(); ++d) {
      const NodeId nb = net.neighbor(at, d);
      if (nb != kInvalidNode && net.distance(nb, dst) < here) {
        probe.push_back(d);
      }
    }
    const DirList fast = net.good_dirs(at, dst);
    ASSERT_EQ(fast.size(), probe.size()) << "at=" << at << " dst=" << dst;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i], probe[i]) << "at=" << at << " dst=" << dst;
    }
    EXPECT_EQ(net.num_good_dirs(at, dst), static_cast<int>(probe.size()));
    for (Dir d = 0; d < net.num_dirs(); ++d) {
      bool in_probe = false;
      for (Dir g : probe) in_probe |= (g == d);
      EXPECT_EQ(net.is_good_dir(at, dst, d), in_probe)
          << "at=" << at << " dst=" << dst << " dir=" << int{d};
    }
  }
  (void)n;
}

TEST(GoodDirs, MeshOverrideMatchesDefinition) {
  Mesh mesh(2, 9);
  expect_goodness_matches_probe(mesh, 1);
  Mesh mesh3(3, 4);
  expect_goodness_matches_probe(mesh3, 2);
}

TEST(GoodDirs, TorusOverrideMatchesDefinition) {
  Mesh even(2, 8, /*wrap=*/true);  // even side: antipodal ties both good
  expect_goodness_matches_probe(even, 3);
  Mesh odd(2, 7, /*wrap=*/true);
  expect_goodness_matches_probe(odd, 4);
  Mesh odd3(3, 5, /*wrap=*/true);
  expect_goodness_matches_probe(odd3, 5);
}

TEST(GoodDirs, HypercubeOverrideMatchesDefinition) {
  Hypercube cube(6);
  expect_goodness_matches_probe(cube, 6);
}

TEST(Torus, WrapsAround) {
  Mesh t(2, 4, /*wrap=*/true);
  const NodeId v = t.node_at(xy(3, 0));
  EXPECT_EQ(t.neighbor(v, Mesh::dir_of(0, +1)), t.node_at(xy(0, 0)));
  EXPECT_EQ(t.neighbor(v, Mesh::dir_of(1, -1)), t.node_at(xy(3, 3)));
  EXPECT_EQ(t.degree(v), 4);
}

TEST(Torus, WrapDistance) {
  Mesh t(2, 8, /*wrap=*/true);
  EXPECT_EQ(t.distance(t.node_at(xy(0, 0)), t.node_at(xy(7, 0))), 1);
  EXPECT_EQ(t.distance(t.node_at(xy(0, 0)), t.node_at(xy(4, 4))), 8);
  EXPECT_EQ(t.diameter(), 8);
}

TEST(Torus, AllNodesFullDegree) {
  Mesh t(3, 4, /*wrap=*/true);
  for (NodeId v = 0; v < static_cast<NodeId>(t.num_nodes()); ++v) {
    EXPECT_EQ(t.degree(v), 6);
  }
}

TEST(Mesh, RejectsBadParameters) {
  EXPECT_THROW(Mesh(0, 4), CheckError);
  EXPECT_THROW(Mesh(9, 4), CheckError);
  EXPECT_THROW(Mesh(2, 1), CheckError);
}

TEST(Hypercube, BasicStructure) {
  Hypercube h(4);
  EXPECT_EQ(h.num_nodes(), 16u);
  EXPECT_EQ(h.num_dirs(), 4);
  EXPECT_EQ(h.diameter(), 4);
  EXPECT_EQ(h.degree(0), 4);
  EXPECT_EQ(h.neighbor(0b1010, 0), 0b1011);
  EXPECT_EQ(h.neighbor(0b1010, 3), 0b0010);
}

TEST(Hypercube, DistanceIsHamming) {
  Hypercube h(5);
  EXPECT_EQ(h.distance(0b00000, 0b11111), 5);
  EXPECT_EQ(h.distance(0b10101, 0b10101), 0);
  EXPECT_EQ(h.distance(0b10100, 0b00101), 2);
}

TEST(Hypercube, ArcsAreSelfReverse) {
  Hypercube h(3);
  for (NodeId v = 0; v < static_cast<NodeId>(h.num_nodes()); ++v) {
    for (Dir d = 0; d < h.num_dirs(); ++d) {
      EXPECT_EQ(h.neighbor(h.neighbor(v, d), h.reverse_dir(d)), v);
    }
  }
}

TEST(Hypercube, GoodDirsAreDifferingBits) {
  Hypercube h(4);
  const auto good = h.good_dirs(0b0000, 0b1010);
  std::set<Dir> got(good.begin(), good.end());
  EXPECT_EQ(got, (std::set<Dir>{1, 3}));
}

TEST(Network, NumArcsMatchesHandshake) {
  Mesh m(2, 4);
  // 2·d·n^{d−1}·(n−1) directed arcs in a d-dim mesh: 2·2·4·3 = 48... per
  // axis: n^{d-1}·(n−1) undirected edges ⇒ total directed = 2·d·n^{d−1}(n−1).
  EXPECT_EQ(m.num_arcs(), 2u * 2u * 4u * 3u);
  Hypercube h(3);
  EXPECT_EQ(h.num_arcs(), 8u * 3u);
}

class MeshSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MeshSweep, StructuralInvariants) {
  const auto [d, n] = GetParam();
  Mesh m(d, n);
  // Degree bounds from Section 2.1: between d (corners) and 2d (interior).
  int min_deg = 100, max_deg = 0;
  for (NodeId v = 0; v < static_cast<NodeId>(m.num_nodes()); ++v) {
    min_deg = std::min(min_deg, m.degree(v));
    max_deg = std::max(max_deg, m.degree(v));
    // Every arc has an antiparallel arc.
    for (Dir dir = 0; dir < m.num_dirs(); ++dir) {
      const NodeId nb = m.neighbor(v, dir);
      if (nb != kInvalidNode) {
        EXPECT_EQ(m.neighbor(nb, m.reverse_dir(dir)), v);
      }
    }
  }
  EXPECT_EQ(min_deg, d);
  EXPECT_EQ(max_deg, n >= 3 ? 2 * d : d);
  EXPECT_EQ(m.diameter(), d * (n - 1));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MeshSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(2, 3, 4, 5)));

TEST(Degree, ClosedFormsMatchTheProbeLoop) {
  // The lean engine profile answers degree() from the topologies' closed
  // forms instead of the cached probe loop (docs/SCALE.md); the two must
  // agree on every node of every shape, wrap or not.
  auto probe = [](const Network& net, NodeId v) {
    int deg = 0;
    for (Dir d = 0; d < net.num_dirs(); ++d) {
      if (net.neighbor(v, d) != kInvalidNode) ++deg;
    }
    return deg;
  };
  for (const int dim : {1, 2, 3}) {
    for (const int side : {2, 3, 5}) {
      for (const bool wrap : {false, true}) {
        Mesh mesh(dim, side, wrap);
        for (NodeId v = 0; v < static_cast<NodeId>(mesh.num_nodes()); ++v) {
          ASSERT_EQ(mesh.degree(v), probe(mesh, v))
              << "dim " << dim << " side " << side << " wrap " << wrap
              << " node " << v;
        }
      }
    }
  }
  for (const int dim : {1, 3, 6}) {
    Hypercube cube(dim);
    for (NodeId v = 0; v < static_cast<NodeId>(cube.num_nodes()); ++v) {
      ASSERT_EQ(cube.degree(v), probe(cube, v)) << "dim " << dim;
    }
  }
}

}  // namespace
}  // namespace hp::net
