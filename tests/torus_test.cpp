// Torus-specific routing behaviour: wraparound shortest paths, greedy
// routing across the seam, and the antipodal "both directions good" case
// that does not exist on the mesh.
#include <gtest/gtest.h>

#include "core/checkers.hpp"
#include "routing/greedy_variants.hpp"
#include "routing/restricted_priority.hpp"
#include "test_support.hpp"
#include "workload/generators.hpp"

namespace hp {
namespace {

using test::make_problem;
using test::xy;

TEST(TorusRouting, PacketTakesTheWrapShortcut) {
  net::Mesh torus(2, 8, /*wrap=*/true);
  // (0,0) → (7,0): distance 1 across the seam, 7 the long way.
  auto problem = make_problem(
      {{torus.node_at(xy(0, 0)), torus.node_at(xy(7, 0))}});
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(torus, problem, policy);
  const auto result = engine.run();
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.steps, 1u);
}

TEST(TorusRouting, AntipodalPacketHasAllDirectionsGood) {
  // On an even torus a packet antipodal to its destination can shrink the
  // distance along every one of the 2d directions.
  net::Mesh torus(2, 8, /*wrap=*/true);
  const auto src = torus.node_at(xy(0, 0));
  const auto dst = torus.node_at(xy(4, 4));
  EXPECT_EQ(torus.num_good_dirs(src, dst), 4);
  auto problem = make_problem({{src, dst}});
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(torus, problem, policy);
  const auto result = engine.run();
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.steps, 8u);  // torus distance
}

TEST(TorusRouting, AlignedAxisHasNoGoodDirection) {
  // Once an axis is aligned, both of its directions are bad — also on the
  // torus (moving either way increases the wrap distance from 0 to 1).
  net::Mesh torus(2, 8, /*wrap=*/true);
  const auto src = torus.node_at(xy(3, 0));
  const auto dst = torus.node_at(xy(3, 5));
  const auto good = torus.good_dirs(src, dst);
  ASSERT_EQ(good.size(), 1u);
  EXPECT_EQ(net::Mesh::axis_of(good[0]), 1);
}

class TorusPolicySweep : public ::testing::TestWithParam<int> {};

TEST_P(TorusPolicySweep, GreedyRoutingCompletesAndStaysGreedy) {
  const int n = GetParam();
  net::Mesh torus(2, n, /*wrap=*/true);
  Rng rng(static_cast<std::uint64_t>(n) * 3 + 1);
  auto problem = workload::random_permutation(torus, rng);
  routing::RestrictedPriorityPolicy policy;
  sim::EngineConfig config;
  config.max_steps = 100'000;
  auto run = test::run_checked(torus, problem, policy, config);
  ASSERT_TRUE(run.result.completed);
  EXPECT_TRUE(run.greedy_violations.empty());
  EXPECT_TRUE(run.preference_violations.empty());
  // Torus diameter is n (vs 2(n−1) for the mesh); random permutations
  // should finish within a small multiple of it.
  EXPECT_LE(run.result.steps, static_cast<std::uint64_t>(6 * n));
}

INSTANTIATE_TEST_SUITE_P(Sides, TorusPolicySweep,
                         ::testing::Values(4, 6, 8, 16));

TEST(TorusRouting, FasterThanMeshOnInversion) {
  // The inversion permutation crosses the whole mesh but wraps cheaply on
  // the torus: corner packets travel 2 hops instead of 2(n−1).
  const int n = 8;
  net::Mesh mesh(2, n), torus(2, n, /*wrap=*/true);
  auto mesh_problem = workload::inversion(mesh);
  auto torus_problem = workload::inversion(torus);
  routing::RestrictedPriorityPolicy p1, p2;
  sim::Engine e1(mesh, mesh_problem, p1), e2(torus, torus_problem, p2);
  const auto mesh_result = e1.run();
  const auto torus_result = e2.run();
  ASSERT_TRUE(mesh_result.completed && torus_result.completed);
  EXPECT_LT(torus_result.steps, mesh_result.steps);
}

TEST(TorusRouting, TornadoRoutesNearOptimally) {
  // Tornado: every packet travels n/2 − 1 along its row, all in the same
  // direction — each row's "+x" ring is loaded identically, and since each
  // packet can use its row exclusively, greedy routes it without conflict.
  net::Mesh torus(2, 8, /*wrap=*/true);
  auto problem = workload::tornado(torus);
  EXPECT_EQ(problem.size(), torus.num_nodes());
  EXPECT_EQ(problem.max_distance(torus), 3);  // n/2 − 1
  routing::RestrictedPriorityPolicy policy;
  auto run = test::run_checked(torus, problem, policy);
  ASSERT_TRUE(run.result.completed);
  EXPECT_TRUE(run.greedy_violations.empty());
  EXPECT_EQ(run.result.steps, 3u);
  EXPECT_EQ(run.result.total_deflections, 0u);
}

TEST(Tornado, RequiresTorus) {
  net::Mesh mesh(2, 8);
  EXPECT_THROW(workload::tornado(mesh), CheckError);
}

TEST(TorusRouting, ThreeDTorusPermutation) {
  net::Mesh torus(3, 4, /*wrap=*/true);
  Rng rng(99);
  auto problem = workload::random_permutation(torus, rng);
  routing::GreedyRandomPolicy policy;
  sim::EngineConfig config;
  config.max_steps = 100'000;
  auto run = test::run_checked(torus, problem, policy, config);
  ASSERT_TRUE(run.result.completed);
  EXPECT_TRUE(run.greedy_violations.empty());
}

}  // namespace
}  // namespace hp
