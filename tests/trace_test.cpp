// Trace recording and ASCII rendering tests (plus Engine::packets_at).
#include <gtest/gtest.h>

#include "routing/restricted_priority.hpp"
#include "sim/trace.hpp"
#include "test_support.hpp"
#include "util/check.hpp"

namespace hp::sim {
namespace {

using test::make_problem;
using test::xy;

TEST(Trace, RecordsOneSnapshotPerStep) {
  net::Mesh mesh(2, 6);
  auto problem = make_problem(
      {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(3, 0))}});
  routing::RestrictedPriorityPolicy policy;
  Engine engine(mesh, problem, policy);
  TraceRecorder trace;
  engine.add_observer(&trace);
  const auto result = engine.run();
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(trace.snapshots().size(), result.steps_executed);
  // First snapshot is post-move of step 0: the packet is at (1,0).
  ASSERT_EQ(trace.snapshots()[0].positions.size(), 1u);
  EXPECT_EQ(trace.snapshots()[0].positions[0].second, mesh.node_at(xy(1, 0)));
  // Final snapshot: packet absorbed, nothing in flight.
  EXPECT_TRUE(trace.snapshots().back().positions.empty());
}

TEST(Trace, RenderMarksOccupancyAndBadNodes) {
  net::Mesh mesh(2, 4);
  TraceRecorder::Snapshot snap;
  snap.step = 7;
  const auto center = mesh.node_at(xy(1, 1));
  snap.positions = {{0, center}, {1, center}, {2, center},
                    {3, mesh.node_at(xy(0, 0))}};
  const std::string art = render_grid(mesh, snap);
  EXPECT_NE(art.find("t=7"), std::string::npos);
  EXPECT_NE(art.find("[3]"), std::string::npos);  // bad node (3 > d = 2)
  EXPECT_NE(art.find(" 1 "), std::string::npos);  // singly occupied
  EXPECT_NE(art.find(" . "), std::string::npos);  // empty nodes
}

TEST(Trace, RenderRejectsNon2D) {
  net::Mesh mesh(3, 4);
  TraceRecorder::Snapshot snap;
  EXPECT_THROW(render_grid(mesh, snap), CheckError);
}

TEST(Engine, PacketsAtReportsResidents) {
  net::Mesh mesh(2, 6);
  const auto a = mesh.node_at(xy(2, 2));
  auto problem = make_problem({{a, 0}, {a, 35}, {5, 30}});
  routing::RestrictedPriorityPolicy policy;
  Engine engine(mesh, problem, policy);
  const auto at_a = engine.packets_at(a);
  EXPECT_EQ(at_a.size(), 2u);
  EXPECT_EQ(engine.packets_at(17).size(), 0u);
}

}  // namespace
}  // namespace hp::sim
