// Unit tests for the util layer: RNG, InlineVector, stats, CSV, tables.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/inline_vector.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(13);
  constexpr std::uint64_t kBound = 7;
  constexpr int kSamples = 70000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.uniform(kBound)];
  for (std::uint64_t v = 0; v < kBound; ++v) {
    EXPECT_GT(counts[v], kSamples / static_cast<int>(kBound) * 8 / 10);
    EXPECT_LT(counts[v], kSamples / static_cast<int>(kBound) * 12 / 10);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double r = rng.real();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(3);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  const auto original = v;
  rng.shuffle(std::span<int>(v));
  EXPECT_NE(v, original);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(11);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(InlineVector, StartsEmpty) {
  InlineVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(InlineVector, PushPopAndIndex) {
  InlineVector<int, 4> v;
  v.push_back(10);
  v.push_back(20);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
  EXPECT_EQ(v.front(), 10);
  EXPECT_EQ(v.back(), 20);
  v.pop_back();
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.back(), 10);
}

TEST(InlineVector, OverflowThrows) {
  InlineVector<int, 2> v{1, 2};
  EXPECT_THROW(v.push_back(3), CheckError);
}

TEST(InlineVector, OutOfRangeIndexThrows) {
  InlineVector<int, 4> v{1};
  EXPECT_THROW(v[1], CheckError);
  EXPECT_THROW((InlineVector<int, 4>{}.pop_back()), CheckError);
}

TEST(InlineVector, EraseAtPreservesOrder) {
  InlineVector<int, 8> v{1, 2, 3, 4, 5};
  v.erase_at(1);
  EXPECT_EQ(v, (InlineVector<int, 8>{1, 3, 4, 5}));
  v.erase_at(0);
  EXPECT_EQ(v, (InlineVector<int, 8>{3, 4, 5}));
  v.erase_at(2);
  EXPECT_EQ(v, (InlineVector<int, 8>{3, 4}));
}

TEST(InlineVector, CopyAndMove) {
  InlineVector<std::string, 4> v{"a", "b"};
  auto copy = v;
  EXPECT_EQ(copy, v);
  auto moved = std::move(v);
  EXPECT_EQ(moved, copy);
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move) — documented
}

TEST(InlineVector, Contains) {
  InlineVector<int, 4> v{1, 3};
  EXPECT_TRUE(v.contains(3));
  EXPECT_FALSE(v.contains(2));
}

TEST(InlineVector, NontrivialDestructorsRun) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    ~Probe() {
      if (c) ++*c;
    }
  };
  {
    InlineVector<Probe, 4> v;
    v.emplace_back(Probe{counter});  // Probe's user-declared destructor
    v.emplace_back(Probe{counter});  // suppresses the move ctor: the
                                     // temporaries are copied and count too
    *counter = 0;                    // ignore the temporaries
  }
  EXPECT_EQ(*counter, 2);
}

TEST(InlineVector, AlignDefaultsToValueAlignment) {
  // Default Align = alignof(T): storage never forces more alignment than
  // the container's other members (size_) already require.
  static_assert(alignof(InlineVector<std::uint64_t, 4>) ==
                alignof(std::uint64_t));
  static_assert(alignof(InlineVector<char, 3>) < 64);
  static_assert(alignof(InlineVector<char, 3, 64>) == 64);
}

TEST(InlineVector, AlignRaisesStorageAlignment) {
  // The engine's per-node buckets use 64 so adjacent nodes written by
  // different shards never share a cache line.
  using Bucket = InlineVector<std::uint32_t, 4, 64>;
  static_assert(alignof(Bucket) == 64);
  static_assert(sizeof(Bucket) % 64 == 0);
  // Capacity and element layout are unchanged by the wider alignment.
  static_assert(Bucket::capacity() == 4);

  Bucket v;
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
  alignas(64) std::array<Bucket, 3> row;
  for (const Bucket& b : row) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 64, 0u);
  }
}

TEST(InlineVector, AlignedPushPopAcrossCapacityBoundary) {
  InlineVector<std::uint32_t, 4, 64> v;
  for (std::uint32_t round = 0; round < 3; ++round) {
    for (std::uint32_t i = 0; i < 4; ++i) v.push_back(round * 10 + i);
    EXPECT_TRUE(v.full());
    EXPECT_THROW(v.push_back(99), CheckError);  // overflow stays checked
    EXPECT_EQ(v.size(), 4u);                    // failed push is a no-op
    for (std::uint32_t i = 4; i-- > 0;) {
      EXPECT_EQ(v.back(), round * 10 + i);
      v.pop_back();
    }
    EXPECT_TRUE(v.empty());
  }
  EXPECT_THROW(v.pop_back(), CheckError);
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Samples, PercentilesAndExtremes) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, EmptyThrows) {
  Samples s;
  EXPECT_THROW(s.mean(), CheckError);
  EXPECT_THROW(s.percentile(0.5), CheckError);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(Histogram, AsciiRendersNonemptyBins) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream out;
  {
    CsvWriter csv(out, {"a", "b"});
    csv.row().add(std::int64_t{1}).add("x");
    csv.row().add(std::int64_t{2}).add("y,z");
  }
  EXPECT_EQ(out.str(), "a,b\n1,x\n2,\"y,z\"\n");
}

TEST(Csv, EscapesQuotes) {
  std::ostringstream out;
  CsvWriter csv(out, {"v"});
  csv.row().add("say \"hi\"");
  EXPECT_EQ(out.str(), "v\n\"say \"\"hi\"\"\"\n");
}

TEST(Table, AlignsColumns) {
  TablePrinter t({"n", "steps"});
  t.row().add(std::int64_t{8}).add(std::int64_t{12345});
  t.row().add(std::int64_t{128}).add(std::int64_t{7});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  // Header plus two rows, all right-aligned to the widest cell.
  EXPECT_EQ(s, "  n  steps\n  8  12345\n128      7\n");
}

TEST(Table, RowArityMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.row().add("only one"), CheckError);
}

TEST(Check, MessageCarriesContext) {
  try {
    HP_CHECK(1 == 2, "the detail");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the detail"), std::string::npos);
  }
}

}  // namespace
}  // namespace hp
