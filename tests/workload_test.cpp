// Workload generator tests: the Section 2 many-to-many constraints and the
// specific shapes of each generator.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "test_support.hpp"
#include "topology/hypercube.hpp"
#include "workload/generators.hpp"

namespace hp::workload {
namespace {

using test::xy;

void expect_valid(const net::Network& net, const Problem& p) {
  EXPECT_NO_THROW(p.validate(net));
}

TEST(Problem, ValidateEnforcesOriginCapacity) {
  net::Mesh mesh(2, 4);
  Problem p;
  const auto corner = mesh.node_at(xy(0, 0));  // degree 2
  p.packets = {{corner, 1}, {corner, 2}};
  EXPECT_NO_THROW(p.validate(mesh));
  p.packets.push_back({corner, 3});
  EXPECT_THROW(p.validate(mesh), CheckError);
}

TEST(Problem, MaxDistance) {
  net::Mesh mesh(2, 8);
  Problem p;
  p.packets = {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(7, 7))},
               {mesh.node_at(xy(1, 1)), mesh.node_at(xy(1, 2))}};
  EXPECT_EQ(p.max_distance(mesh), 14);
}

TEST(RandomManyToMany, RespectsSizeAndCapacity) {
  net::Mesh mesh(2, 8);
  Rng rng(1);
  for (std::size_t k : {1u, 10u, 100u, 200u}) {
    auto p = random_many_to_many(mesh, k, rng);
    EXPECT_EQ(p.size(), k);
    expect_valid(mesh, p);
  }
}

TEST(RandomManyToMany, RejectsOverCapacity) {
  net::Mesh mesh(2, 2);  // 4 nodes, each degree 2 ⇒ capacity 8
  Rng rng(2);
  EXPECT_NO_THROW(random_many_to_many(mesh, 8, rng));
  EXPECT_THROW(random_many_to_many(mesh, 9, rng), CheckError);
}

TEST(RandomPermutation, IsAPermutation) {
  net::Mesh mesh(2, 6);
  Rng rng(3);
  auto p = random_permutation(mesh, rng);
  EXPECT_EQ(p.size(), mesh.num_nodes());
  expect_valid(mesh, p);
  std::set<net::NodeId> sources, dests;
  for (const auto& s : p.packets) {
    sources.insert(s.src);
    dests.insert(s.dst);
  }
  EXPECT_EQ(sources.size(), mesh.num_nodes());
  EXPECT_EQ(dests.size(), mesh.num_nodes());
}

TEST(Transpose, MapsXYtoYX) {
  net::Mesh mesh(2, 5);
  auto p = transpose(mesh);
  expect_valid(mesh, p);
  for (const auto& s : p.packets) {
    const auto c = mesh.coords(s.src);
    const auto t = mesh.coords(s.dst);
    EXPECT_EQ(c[0], t[1]);
    EXPECT_EQ(c[1], t[0]);
  }
}

TEST(BitReversal, SelfInverse) {
  net::Mesh mesh(2, 8);
  auto p = bit_reversal(mesh);
  expect_valid(mesh, p);
  std::map<net::NodeId, net::NodeId> fwd;
  for (const auto& s : p.packets) fwd[s.src] = s.dst;
  for (const auto& [src, dst] : fwd) {
    EXPECT_EQ(fwd[dst], src);
  }
}

TEST(BitReversal, RequiresPowerOfTwo) {
  net::Mesh mesh(2, 6);
  EXPECT_THROW(bit_reversal(mesh), CheckError);
}

TEST(Inversion, EveryPacketCrossesCenter) {
  net::Mesh mesh(2, 8);
  auto p = inversion(mesh);
  expect_valid(mesh, p);
  // The corner packet travels the full diameter.
  EXPECT_EQ(p.max_distance(mesh), mesh.diameter());
  // Inversion is an involution.
  std::map<net::NodeId, net::NodeId> fwd;
  for (const auto& s : p.packets) fwd[s.src] = s.dst;
  for (const auto& [src, dst] : fwd) EXPECT_EQ(fwd[dst], src);
}

TEST(SingleTarget, AllToOne) {
  net::Mesh mesh(2, 8);
  Rng rng(4);
  const auto target = mesh.node_at(xy(4, 4));
  auto p = single_target(mesh, 50, target, rng);
  EXPECT_EQ(p.size(), 50u);
  expect_valid(mesh, p);
  for (const auto& s : p.packets) EXPECT_EQ(s.dst, target);
}

TEST(Hotspot, DestinationsConcentrate) {
  net::Mesh mesh(2, 8);
  Rng rng(5);
  auto p = hotspot(mesh, 60, 3, rng);
  expect_valid(mesh, p);
  std::set<net::NodeId> dests;
  for (const auto& s : p.packets) dests.insert(s.dst);
  EXPECT_LE(dests.size(), 3u);
}

TEST(CornerToCorner, SourcesInOneQuadrantDestsInOpposite) {
  net::Mesh mesh(2, 8);
  Rng rng(6);
  auto p = corner_to_corner(mesh, rng);
  EXPECT_EQ(p.size(), 16u);  // (n/2)² sources
  expect_valid(mesh, p);
  for (const auto& s : p.packets) {
    const auto c = mesh.coords(s.src);
    const auto t = mesh.coords(s.dst);
    EXPECT_LT(c[0], 4);
    EXPECT_LT(c[1], 4);
    EXPECT_GE(t[0], 4);
    EXPECT_GE(t[1], 4);
  }
}

TEST(SaturatedRandom, FillsEveryNodeToItsDegree) {
  net::Mesh mesh(2, 6);
  Rng rng(7);
  auto p = saturated_random(mesh, 4, rng);
  expect_valid(mesh, p);
  std::map<net::NodeId, int> per_origin;
  for (const auto& s : p.packets) ++per_origin[s.src];
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(mesh.num_nodes());
       ++v) {
    EXPECT_EQ(per_origin[v], mesh.degree(v));
  }
}

TEST(RowsToRandomColumns, EachRowTargetsOneColumn) {
  net::Mesh mesh(2, 6);
  Rng rng(8);
  auto p = rows_to_random_columns(mesh, rng);
  expect_valid(mesh, p);
  EXPECT_EQ(p.size(), mesh.num_nodes());
  // All packets originating in row y go to the same column.
  std::map<int, std::set<int>> row_to_cols;
  for (const auto& s : p.packets) {
    row_to_cols[mesh.coords(s.src)[1]].insert(mesh.coords(s.dst)[0]);
  }
  for (const auto& [row, cols] : row_to_cols) {
    EXPECT_EQ(cols.size(), 1u) << "row " << row;
  }
}

TEST(Generators, WorkOnHypercube) {
  net::Hypercube cube(4);
  Rng rng(9);
  auto p1 = random_many_to_many(cube, 30, rng);
  expect_valid(cube, p1);
  auto p2 = random_permutation(cube, rng);
  expect_valid(cube, p2);
  auto p3 = single_target(cube, 20, 5, rng);
  expect_valid(cube, p3);
}

TEST(Generators, AreDeterministicGivenSeed) {
  net::Mesh mesh(2, 8);
  Rng r1(42), r2(42);
  auto p1 = random_many_to_many(mesh, 40, r1);
  auto p2 = random_many_to_many(mesh, 40, r2);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1.packets[i].src, p2.packets[i].src);
    EXPECT_EQ(p1.packets[i].dst, p2.packets[i].dst);
  }
}

}  // namespace
}  // namespace hp::workload
