// Workload generator tests: the Section 2 many-to-many constraints, the
// specific shapes of each generator, and the continuous-injection traffic
// sources (destination patterns + heavy-tailed Pareto flow sizes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>

#include "routing/restricted_priority.hpp"
#include "sim/engine.hpp"
#include "test_support.hpp"
#include "topology/hypercube.hpp"
#include "workload/generators.hpp"
#include "workload/traffic.hpp"

namespace hp::workload {
namespace {

using test::xy;

void expect_valid(const net::Network& net, const Problem& p) {
  EXPECT_NO_THROW(p.validate(net));
}

TEST(Problem, ValidateEnforcesOriginCapacity) {
  net::Mesh mesh(2, 4);
  Problem p;
  const auto corner = mesh.node_at(xy(0, 0));  // degree 2
  p.packets = {{corner, 1}, {corner, 2}};
  EXPECT_NO_THROW(p.validate(mesh));
  p.packets.push_back({corner, 3});
  EXPECT_THROW(p.validate(mesh), CheckError);
}

TEST(Problem, MaxDistance) {
  net::Mesh mesh(2, 8);
  Problem p;
  p.packets = {{mesh.node_at(xy(0, 0)), mesh.node_at(xy(7, 7))},
               {mesh.node_at(xy(1, 1)), mesh.node_at(xy(1, 2))}};
  EXPECT_EQ(p.max_distance(mesh), 14);
}

TEST(RandomManyToMany, RespectsSizeAndCapacity) {
  net::Mesh mesh(2, 8);
  Rng rng(1);
  for (std::size_t k : {1u, 10u, 100u, 200u}) {
    auto p = random_many_to_many(mesh, k, rng);
    EXPECT_EQ(p.size(), k);
    expect_valid(mesh, p);
  }
}

TEST(RandomManyToMany, RejectsOverCapacity) {
  net::Mesh mesh(2, 2);  // 4 nodes, each degree 2 ⇒ capacity 8
  Rng rng(2);
  EXPECT_NO_THROW(random_many_to_many(mesh, 8, rng));
  EXPECT_THROW(random_many_to_many(mesh, 9, rng), CheckError);
}

TEST(RandomPermutation, IsAPermutation) {
  net::Mesh mesh(2, 6);
  Rng rng(3);
  auto p = random_permutation(mesh, rng);
  EXPECT_EQ(p.size(), mesh.num_nodes());
  expect_valid(mesh, p);
  std::set<net::NodeId> sources, dests;
  for (const auto& s : p.packets) {
    sources.insert(s.src);
    dests.insert(s.dst);
  }
  EXPECT_EQ(sources.size(), mesh.num_nodes());
  EXPECT_EQ(dests.size(), mesh.num_nodes());
}

TEST(Transpose, MapsXYtoYX) {
  net::Mesh mesh(2, 5);
  auto p = transpose(mesh);
  expect_valid(mesh, p);
  for (const auto& s : p.packets) {
    const auto c = mesh.coords(s.src);
    const auto t = mesh.coords(s.dst);
    EXPECT_EQ(c[0], t[1]);
    EXPECT_EQ(c[1], t[0]);
  }
}

TEST(BitReversal, SelfInverse) {
  net::Mesh mesh(2, 8);
  auto p = bit_reversal(mesh);
  expect_valid(mesh, p);
  std::map<net::NodeId, net::NodeId> fwd;
  for (const auto& s : p.packets) fwd[s.src] = s.dst;
  for (const auto& [src, dst] : fwd) {
    EXPECT_EQ(fwd[dst], src);
  }
}

TEST(BitReversal, RequiresPowerOfTwo) {
  net::Mesh mesh(2, 6);
  EXPECT_THROW(bit_reversal(mesh), CheckError);
}

TEST(Inversion, EveryPacketCrossesCenter) {
  net::Mesh mesh(2, 8);
  auto p = inversion(mesh);
  expect_valid(mesh, p);
  // The corner packet travels the full diameter.
  EXPECT_EQ(p.max_distance(mesh), mesh.diameter());
  // Inversion is an involution.
  std::map<net::NodeId, net::NodeId> fwd;
  for (const auto& s : p.packets) fwd[s.src] = s.dst;
  for (const auto& [src, dst] : fwd) EXPECT_EQ(fwd[dst], src);
}

TEST(SingleTarget, AllToOne) {
  net::Mesh mesh(2, 8);
  Rng rng(4);
  const auto target = mesh.node_at(xy(4, 4));
  auto p = single_target(mesh, 50, target, rng);
  EXPECT_EQ(p.size(), 50u);
  expect_valid(mesh, p);
  for (const auto& s : p.packets) EXPECT_EQ(s.dst, target);
}

TEST(Hotspot, DestinationsConcentrate) {
  net::Mesh mesh(2, 8);
  Rng rng(5);
  auto p = hotspot(mesh, 60, 3, rng);
  expect_valid(mesh, p);
  std::set<net::NodeId> dests;
  for (const auto& s : p.packets) dests.insert(s.dst);
  EXPECT_LE(dests.size(), 3u);
}

TEST(CornerToCorner, SourcesInOneQuadrantDestsInOpposite) {
  net::Mesh mesh(2, 8);
  Rng rng(6);
  auto p = corner_to_corner(mesh, rng);
  EXPECT_EQ(p.size(), 16u);  // (n/2)² sources
  expect_valid(mesh, p);
  for (const auto& s : p.packets) {
    const auto c = mesh.coords(s.src);
    const auto t = mesh.coords(s.dst);
    EXPECT_LT(c[0], 4);
    EXPECT_LT(c[1], 4);
    EXPECT_GE(t[0], 4);
    EXPECT_GE(t[1], 4);
  }
}

TEST(SaturatedRandom, FillsEveryNodeToItsDegree) {
  net::Mesh mesh(2, 6);
  Rng rng(7);
  auto p = saturated_random(mesh, 4, rng);
  expect_valid(mesh, p);
  std::map<net::NodeId, int> per_origin;
  for (const auto& s : p.packets) ++per_origin[s.src];
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(mesh.num_nodes());
       ++v) {
    EXPECT_EQ(per_origin[v], mesh.degree(v));
  }
}

TEST(RowsToRandomColumns, EachRowTargetsOneColumn) {
  net::Mesh mesh(2, 6);
  Rng rng(8);
  auto p = rows_to_random_columns(mesh, rng);
  expect_valid(mesh, p);
  EXPECT_EQ(p.size(), mesh.num_nodes());
  // All packets originating in row y go to the same column.
  std::map<int, std::set<int>> row_to_cols;
  for (const auto& s : p.packets) {
    row_to_cols[mesh.coords(s.src)[1]].insert(mesh.coords(s.dst)[0]);
  }
  for (const auto& [row, cols] : row_to_cols) {
    EXPECT_EQ(cols.size(), 1u) << "row " << row;
  }
}

TEST(Generators, WorkOnHypercube) {
  net::Hypercube cube(4);
  Rng rng(9);
  auto p1 = random_many_to_many(cube, 30, rng);
  expect_valid(cube, p1);
  auto p2 = random_permutation(cube, rng);
  expect_valid(cube, p2);
  auto p3 = single_target(cube, 20, 5, rng);
  expect_valid(cube, p3);
}

TEST(Generators, AreDeterministicGivenSeed) {
  net::Mesh mesh(2, 8);
  Rng r1(42), r2(42);
  auto p1 = random_many_to_many(mesh, 40, r1);
  auto p2 = random_many_to_many(mesh, 40, r2);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1.packets[i].src, p2.packets[i].src);
    EXPECT_EQ(p1.packets[i].dst, p2.packets[i].dst);
  }
}

// --- continuous-injection traffic (traffic.hpp) -----------------------------

TEST(Pattern, NamesRoundTrip) {
  for (auto p : {DestPattern::kUniform, DestPattern::kHotspot,
                 DestPattern::kTranspose, DestPattern::kBitReversal}) {
    EXPECT_EQ(pattern_from_name(pattern_name(p)), p);
  }
  EXPECT_THROW(pattern_from_name("zipf"), CheckError);
}

TEST(Pareto, RejectsDegenerateShapes) {
  // α ≤ 1 means an infinite mean: no offered packet rate can be converted
  // into a flow arrival rate, so construction must fail loudly.
  EXPECT_THROW(ParetoSampler(1.0, 1.0), CheckError);
  EXPECT_THROW(ParetoSampler(0.5, 1.0), CheckError);
  EXPECT_THROW(ParetoSampler(1.6, 0.0), CheckError);
  EXPECT_THROW(ParetoSampler(1.6, -2.0), CheckError);
  ParetoSampler ok(1.6, 1.0);
  Rng rng(1);
  EXPECT_THROW(ok.sample_size(rng, 0), CheckError);
}

TEST(Pareto, GoldenFingerprint) {
  // FNV-1a over the bit patterns of the first 256 draws at seed 42. Pins
  // the exact sampling algorithm (inverse CDF over Rng::real): any change
  // to the draw sequence silently invalidates every committed sweep
  // artifact, so it must show up here first.
  ParetoSampler sampler(1.6, 1.0);
  Rng rng(42);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 256; ++i) {
    const double x = sampler.sample_real(rng);
    ASSERT_GE(x, 1.0);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x, sizeof(bits));
    for (int b = 0; b < 64; b += 8) {
      hash ^= (bits >> b) & 0xff;
      hash *= 0x100000001b3ULL;
    }
  }
  EXPECT_EQ(hash, 0xbbfdbabb67ff4777ULL);
}

TEST(Pareto, SampleMeanMatchesAnalyticMean) {
  ParetoSampler sampler(2.5, 1.0);  // mean α/(α−1) = 5/3
  Rng rng(7);
  const int n = 50'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += sampler.sample_real(rng);
  EXPECT_NEAR(sum / n, sampler.mean(), 0.05 * sampler.mean());
}

TEST(Pareto, SampleVarianceMatchesAnalyticVariance) {
  const double alpha = 3.5, xm = 1.0;
  ParetoSampler sampler(alpha, xm);
  Rng rng(11);
  const int n = 100'000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = sampler.sample_real(rng);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  const double expected =
      alpha * xm * xm / ((alpha - 1.0) * (alpha - 1.0) * (alpha - 2.0));
  EXPECT_NEAR(var, expected, 0.15 * expected);
}

TEST(Pareto, HillEstimatorRecoversTailIndex) {
  // The Hill estimator over the top-k order statistics is the standard
  // tail-index diagnostic; on true Pareto data it is consistent, so a
  // large sample must recover α within a small tolerance.
  const double alpha = 1.5;
  ParetoSampler sampler(alpha, 1.0);
  Rng rng(13);
  const std::size_t n = 40'000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = sampler.sample_real(rng);
  std::sort(xs.begin(), xs.end(), std::greater<>());
  const std::size_t k = 2'000;
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) acc += std::log(xs[i] / xs[k]);
  const double hill = static_cast<double>(k) / acc;
  EXPECT_NEAR(hill, alpha, 0.15);
}

TEST(Pareto, SampleSizeClampsToCapAndFloor) {
  ParetoSampler sampler(1.2, 1.0);  // very heavy tail
  Rng rng(17);
  bool saw_cap = false;
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t s = sampler.sample_size(rng, 64);
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 64u);
    saw_cap = saw_cap || s == 64;
  }
  EXPECT_TRUE(saw_cap);  // α = 1.2 has P(X > 64) ≈ 64^−1.2 ≈ 7e−3
}

TEST(Traffic, FixedPatternsMatchBatchGenerators) {
  net::Mesh mesh(2, 8);
  for (auto pattern : {DestPattern::kTranspose, DestPattern::kBitReversal}) {
    TrafficConfig config;
    config.pattern = pattern;
    TrafficInjector injector(mesh, config, 0.1, /*seed=*/3);
    const auto batch = pattern == DestPattern::kTranspose
                           ? transpose(mesh)
                           : bit_reversal(mesh);
    std::map<net::NodeId, net::NodeId> want;
    for (const auto& spec : batch.packets) {
      if (spec.dst != spec.src) want[spec.src] = spec.dst;
    }
    for (net::NodeId v = 0; v < static_cast<net::NodeId>(mesh.num_nodes());
         ++v) {
      const auto it = want.find(v);
      EXPECT_EQ(injector.fixed_dst(v),
                it == want.end() ? net::kInvalidNode : it->second);
    }
  }
}

TEST(Traffic, PatternsNeedingCoordinatesRejectNonMesh) {
  net::Hypercube cube(4);
  TrafficConfig config;
  config.pattern = DestPattern::kTranspose;
  EXPECT_THROW(TrafficInjector(cube, config, 0.1, 1), CheckError);
}

/// Drives a short injector-fed run and returns the engine's packet log as
/// (src, dst, injected_at) triples.
std::vector<std::array<std::uint64_t, 3>> drive(const TrafficConfig& config,
                                                double rate,
                                                std::uint64_t seed,
                                                std::uint64_t steps = 600) {
  net::Mesh mesh(2, 8);
  Problem empty;
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, empty, policy);
  TrafficInjector injector(mesh, config, rate, seed);
  engine.set_injector(&injector);
  engine.run_for(steps);
  std::vector<std::array<std::uint64_t, 3>> log;
  for (std::size_t i = 0; i < engine.num_packets(); ++i) {
    const auto& p = engine.packet(static_cast<sim::PacketId>(i));
    log.push_back({static_cast<std::uint64_t>(p.src),
                   static_cast<std::uint64_t>(p.dst), p.injected_at});
  }
  return log;
}

TEST(Traffic, UniformNeverSelfTargets) {
  TrafficConfig config;
  const auto log = drive(config, 0.2, 5);
  ASSERT_GT(log.size(), 100u);
  for (const auto& [src, dst, step] : log) EXPECT_NE(src, dst);
}

TEST(Traffic, HotspotConcentratesOnDrawnReceivers) {
  TrafficConfig config;
  config.pattern = DestPattern::kHotspot;
  config.hotspots = 3;
  net::Mesh mesh(2, 8);
  TrafficInjector probe(mesh, config, 0.1, /*seed=*/9);
  ASSERT_EQ(probe.hotspot_nodes().size(), 3u);
  EXPECT_TRUE(std::is_sorted(probe.hotspot_nodes().begin(),
                             probe.hotspot_nodes().end()));

  const auto log = drive(config, 0.1, 9);
  ASSERT_GT(log.size(), 50u);
  const std::set<std::uint64_t> spots(probe.hotspot_nodes().begin(),
                                      probe.hotspot_nodes().end());
  for (const auto& [src, dst, step] : log) {
    EXPECT_TRUE(spots.count(dst)) << "dst " << dst << " not a hotspot";
  }
}

TEST(Traffic, InjectionIsDeterministicGivenSeed) {
  TrafficConfig config;
  config.pareto = true;
  EXPECT_EQ(drive(config, 0.15, 21), drive(config, 0.15, 21));
  EXPECT_NE(drive(config, 0.15, 21), drive(config, 0.15, 22));
}

TEST(Traffic, ParetoProducesMultiPacketFlows) {
  TrafficConfig config;
  config.pareto = true;  // α = 1.6 ⇒ E[flow] ≈ 2.67 packets
  config.max_flow_packets = 64;
  const auto log = drive(config, 0.1, 31, /*steps=*/2000);
  ASSERT_GT(log.size(), 200u);
  std::map<std::pair<std::uint64_t, std::uint64_t>, int> per_pair;
  int biggest = 0;
  for (const auto& [src, dst, step] : log) {
    biggest = std::max(biggest, ++per_pair[{src, dst}]);
  }
  // The tail must actually show up: some source keeps a single flow going
  // long enough to stack many packets onto one (src, dst) pair.
  EXPECT_GE(biggest, 4);
  // And the average flow exceeds one packet by a clear margin.
  EXPECT_GT(static_cast<double>(log.size()),
            1.3 * static_cast<double>(per_pair.size()));
}

TEST(Traffic, BlockedOffersAreCountedNotDropped) {
  TrafficConfig config;
  net::Mesh mesh(2, 4);
  Problem empty;
  routing::RestrictedPriorityPolicy policy;
  sim::Engine engine(mesh, empty, policy);
  TrafficInjector injector(mesh, config, /*rate=*/1.0, /*seed=*/2);
  engine.set_injector(&injector);
  engine.run_for(400);
  // At the ceiling rate the capacity rule must push back…
  EXPECT_GT(injector.blocked(), 0u);
  EXPECT_EQ(injector.offered(), injector.admitted() + injector.blocked());
  // …and every admitted offer is a real packet in the engine.
  EXPECT_EQ(injector.admitted(), engine.num_packets());
}

TEST(Traffic, SetRateValidatesAndRetunes) {
  net::Mesh mesh(2, 4);
  TrafficConfig config;
  TrafficInjector injector(mesh, config, 0.5, 1);
  EXPECT_THROW(injector.set_rate(-0.1), CheckError);
  EXPECT_THROW(injector.set_rate(1.5), CheckError);
  injector.set_rate(0.25);
  EXPECT_DOUBLE_EQ(injector.rate(), 0.25);
}

}  // namespace
}  // namespace hp::workload
